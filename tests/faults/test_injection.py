"""Fault injection end to end: every plan kind against real workloads,
plus the engine watchdog at system level."""

import math

import pytest

from repro import GPUSystem, ModelName, PMPlacement, small_system
from repro.apps import build_app
from repro.common.errors import (
    FaultInjectionError,
    LivelockError,
    TornPersistError,
)
from repro.faults import (
    AckDelayPlan,
    AckLossPlan,
    DrainDropPlan,
    FaultInjector,
    NVMTransientPlan,
    PowerCutPlan,
    TornPersistPlan,
    build_injector,
)
from repro.faults.injector import _mix
from repro.faults.oracles import (
    APP_VIOLATION,
    CONSISTENT,
    FAULT_RAISED,
    HUNG,
    recover_and_classify,
)
from repro.faults.runner import run_fault_scenario
from repro.memory.subsystem import PersistRecord

PARAMS = dict(n_pairs=128, capacity=256, rounds=2)


def scenario(model, plan_json, params=PARAMS, max_points=8):
    config = small_system(model, placement=PMPlacement.FAR)
    fault = dict(plan_json)
    fault["max_crash_points"] = max_points
    return run_fault_scenario("gpkvs", config, dict(params), fault)


class TestDeterminism:
    def test_mix_is_deterministic(self):
        assert _mix(1, 42) == _mix(1, 42)
        assert _mix(1, 42) != _mix(1, 43)
        assert _mix(1, 42) != _mix(2, 42)

    def test_build_injector(self):
        assert build_injector(None) is None
        injector = build_injector(PowerCutPlan())
        assert injector is not None and injector.active

    def test_scenario_detail_is_reproducible(self, model):
        first = scenario(model, PowerCutPlan().to_json())
        second = scenario(model, PowerCutPlan().to_json())
        assert first.detail == second.detail
        assert first.cycles == second.cycles


class TestTornPersists:
    def test_last_mode_tears_only_the_final_record(self):
        records = [
            PersistRecord(seq, 0, 128 * seq, {128 * seq + 4 * i: i for i in range(4)}, 100.0 * seq)
            for seq in range(1, 4)
        ]
        injector = FaultInjector(TornPersistPlan(span_cycles=50.0))
        torn = injector.torn_records(records, 310.0)
        assert torn[0].words == records[0].words
        assert torn[1].words == records[1].words
        assert set(torn[2].words).issubset(set(records[2].words))
        assert len(torn[2].words) < len(records[2].words)

    def test_last_mode_respects_span(self):
        records = [PersistRecord(1, 0, 0, {0: 1, 4: 2}, 100.0)]
        injector = FaultInjector(TornPersistPlan(span_cycles=50.0))
        assert injector.torn_records(records, 500.0)[0].words == records[0].words

    def test_window_mode_tears_every_resident_record(self):
        records = [
            PersistRecord(seq, 0, 128 * seq, {128 * seq + 4 * i: i for i in range(4)}, 1000.0 + seq)
            for seq in range(1, 4)
        ]
        plan = TornPersistPlan(mode="window", span_cycles=100.0, expect="any")
        torn = FaultInjector(plan).torn_records(records, 1005.0)
        for before, after in zip(records, torn):
            assert len(after.words) < len(before.words)

    def test_empty_record_raises_typed_error(self):
        injector = FaultInjector(TornPersistPlan())
        with pytest.raises(TornPersistError):
            injector.torn_records([PersistRecord(1, 0, 0, {}, 10.0)], 10.0)

    def test_safe_tear_recovers_consistently(self, model):
        result = scenario(model, TornPersistPlan().to_json())
        assert result.detail["outcome"] == CONSISTENT
        assert result.detail["matched"]


class TestDrainDrop:
    def test_dropped_flushes_break_recovery(self):
        result = scenario(ModelName.SBRP, DrainDropPlan().to_json())
        detail = result.detail
        assert detail["injected"]["dropped_flushes"] > 0
        assert detail["outcome"] == "inconsistent"
        assert detail["point_counts"].get(APP_VIOLATION, 0) > 0
        assert detail["matched"]  # expect=any records, never fails

    def test_reproducer_pins_one_crash_point(self):
        result = scenario(ModelName.SBRP, DrainDropPlan().to_json())
        repro = result.detail["reproducer"]
        assert repro is not None
        assert repro["mode"] == "faults"
        assert len(repro["fault"]["crash_times"]) == 1

    def test_drop_cap_and_offset(self):
        injector = FaultInjector(
            DrainDropPlan(drop_every=1, drop_offset=2, max_drops=3)
        )
        decisions = [injector.drop_flush(0, 128 * i) for i in range(10)]
        assert decisions == [False, False, True, True, True] + [False] * 5


class TestAckFaults:
    def test_delayed_acks_only_slow_the_run(self, model):
        clean = scenario(model, PowerCutPlan().to_json(), max_points=1)
        delayed = scenario(model, AckDelayPlan().to_json(), max_points=1)
        assert delayed.detail["outcome"] == CONSISTENT
        assert delayed.detail["injected"]["delayed_acks"] > 0
        assert delayed.cycles >= clean.cycles

    def test_lost_acks_wedge_diagnosably(self, model):
        """ACTR starvation must surface as a *typed* failure (deadlock,
        budget, or watchdog) — never an undiagnosed infinite run."""
        result = scenario(model, AckLossPlan().to_json())
        detail = result.detail
        assert detail["run"]["classification"] == HUNG
        assert detail["outcome"] == HUNG
        assert detail["matched"]
        assert detail["injected"]["lost_acks"] > 0


class TestNVMTransients:
    def test_within_retry_budget_adds_latency_only(self, model):
        clean = scenario(model, PowerCutPlan().to_json(), max_points=1)
        flaky = scenario(model, NVMTransientPlan().to_json(), max_points=1)
        assert flaky.detail["outcome"] == CONSISTENT
        assert flaky.detail["injected"]["nvm_transient_failures"] > 0
        assert flaky.cycles > clean.cycles

    def test_retry_exhaustion_raises_typed_error(self, model):
        plan = NVMTransientPlan(fails=7, max_retries=3, expect=FAULT_RAISED)
        result = scenario(model, plan.to_json())
        detail = result.detail
        assert detail["run"]["classification"] == FAULT_RAISED
        assert detail["matched"]
        assert "FaultInjectionError" in detail["run"]["error"]

    def test_injector_raises_directly(self):
        injector = FaultInjector(
            NVMTransientPlan(fails=7, max_retries=3, expect="any")
        )
        with pytest.raises(FaultInjectionError, match="retry budget"):
            injector.persist_delay(NVMTransientPlan().fail_every)


class TestOracleClassification:
    def test_complete_image_is_consistent(self):
        config = small_system(ModelName.SBRP)
        system = GPUSystem(config)
        app = build_app("gpkvs", **PARAMS)
        app.setup(system)
        app.run(system)
        system.sync()
        classification, error = recover_and_classify(
            "gpkvs", dict(PARAMS), config, system.crash()
        )
        assert classification == CONSISTENT and error is None

    def test_seeded_bug_classified_as_app_violation(self):
        params = {**PARAMS, "seeded_bug": "commit_first"}
        result = scenario(ModelName.SBRP, PowerCutPlan(expect="any").to_json(), params=params, max_points=0)
        counts = result.detail["point_counts"]
        assert counts.get(APP_VIOLATION, 0) > 0


class TestWatchdog:
    def test_spinning_kernel_is_diagnosed(self):
        """A pAcq spin whose flag never publishes generates events
        forever without progress; the watchdog must convert that into a
        LivelockError with queue-depth diagnostics."""
        from repro.common.config import Scope

        system = GPUSystem(
            small_system(ModelName.SBRP), watchdog_events=20_000
        )
        flag = system.malloc(128)

        def spin(w):
            while True:
                got = yield w.pacq(flag.base, Scope.DEVICE)
                if got:
                    break

        with pytest.raises(LivelockError) as info:
            system.launch(spin, 1)
            system.sync()
        err = info.value
        assert err.idle_events > 20_000
        assert err.queue_depths.get("engine.pending", 0) >= 0
        assert any(key.endswith("live_warps") for key in err.queue_depths)

    def test_real_workload_stays_under_watchdog(self, model):
        system = GPUSystem(small_system(model), watchdog_events=200_000)
        app = build_app("gpkvs", **PARAMS)
        app.setup(system)
        app.run(system)
        assert math.isfinite(system.sync())

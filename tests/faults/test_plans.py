"""Fault plans: registry, validation, JSON round-trips, job wiring."""

import pytest

from repro.common.config import ModelName, small_system
from repro.common.errors import ConfigError
from repro.exec import MODE_FAULTS, ScenarioJob
from repro.faults import (
    EXPECT_ANY,
    EXPECT_CONSISTENT,
    EXPECT_HUNG,
    PLAN_KINDS,
    AckDelayPlan,
    AckLossPlan,
    DrainDropPlan,
    DrainReorderPlan,
    FaultPlan,
    NVMTransientPlan,
    PowerCutPlan,
    TornPersistPlan,
)


class TestRegistry:
    def test_every_plan_kind_is_registered(self):
        # The chaos timeline plan registers lazily on first import, so
        # its presence depends on which tests ran earlier in the session.
        assert set(PLAN_KINDS) - {"timeline"} == {
            "power_cut",
            "torn_persist",
            "drain_reorder",
            "drain_drop",
            "ack_delay",
            "ack_loss",
            "nvm_transient",
        }

    @pytest.mark.parametrize("kind", sorted(PLAN_KINDS))
    def test_round_trip(self, kind):
        plan = PLAN_KINDS[kind]()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_round_trip_preserves_overrides(self):
        plan = TornPersistPlan(mode="window", span_cycles=50.0, expect=EXPECT_ANY)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.mode == "window"
        assert again.span_cycles == 50.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault-plan kind"):
            FaultPlan.from_json({"kind": "cosmic_rays"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fields"):
            FaultPlan.from_json({"kind": "power_cut", "volts": 0})


class TestValidation:
    def test_bad_expectation_rejected(self):
        with pytest.raises(ConfigError, match="unknown expectation"):
            PowerCutPlan(expect="probably_fine")

    def test_bad_torn_mode_rejected(self):
        with pytest.raises(ConfigError, match="last|window"):
            TornPersistPlan(mode="diagonal")

    @pytest.mark.parametrize(
        "make",
        [
            lambda: TornPersistPlan(span_cycles=0),
            lambda: DrainReorderPlan(shift_every=0),
            lambda: DrainDropPlan(drop_every=0),
            lambda: AckDelayPlan(delay_cycles=-1),
            lambda: AckLossPlan(lose_every=0),
            lambda: NVMTransientPlan(backoff_cycles=0),
        ],
        ids=["torn", "reorder", "drop", "delay", "loss", "nvm"],
    )
    def test_bad_parameters_rejected(self, make):
        with pytest.raises(ConfigError):
            make()

    def test_default_expectations(self):
        assert PowerCutPlan().expect == EXPECT_CONSISTENT
        assert TornPersistPlan().expect == EXPECT_CONSISTENT
        assert DrainReorderPlan().expect == EXPECT_ANY
        assert DrainDropPlan().expect == EXPECT_ANY
        assert AckLossPlan().expect == EXPECT_HUNG

    def test_labels(self):
        assert TornPersistPlan().label == "torn_persist:last"
        assert TornPersistPlan(mode="window", expect=EXPECT_ANY).label == (
            "torn_persist:window"
        )
        assert NVMTransientPlan().label == "nvm_transient"
        assert (
            NVMTransientPlan(fails=7, max_retries=3, expect=EXPECT_ANY).label
            == "nvm_transient:exhausted"
        )

    def test_retry_delay_is_linear_backoff_sum(self):
        plan = NVMTransientPlan(fails=3, backoff_cycles=100.0)
        assert plan.retry_delay == 100.0 + 200.0 + 300.0


class TestJobWiring:
    def make_job(self, **kwargs):
        return ScenarioJob(
            app="gpkvs",
            config=small_system(ModelName.SBRP),
            app_params=dict(n_pairs=64, capacity=128, rounds=2),
            **kwargs,
        )

    def test_faults_mode_requires_plan(self):
        with pytest.raises(ConfigError, match="fault plan"):
            self.make_job(mode=MODE_FAULTS)

    def test_plan_requires_faults_mode(self):
        with pytest.raises(ConfigError, match="fault plan"):
            self.make_job(fault=PowerCutPlan().to_json())

    def test_fault_job_round_trips(self):
        job = self.make_job(mode=MODE_FAULTS, fault=PowerCutPlan().to_json())
        again = ScenarioJob.from_json(job.to_json())
        assert again == job
        assert again.spec_hash == job.spec_hash

    def test_fault_label_names_the_kind(self):
        job = self.make_job(mode=MODE_FAULTS, fault=AckLossPlan().to_json())
        assert "ack_loss" in job.label

    def test_plain_job_spec_has_no_fault_key(self):
        """Adding the fault field must not perturb pre-existing specs
        (and therefore cache keys) of non-fault jobs."""
        assert "fault" not in self.make_job().spec

    def test_fault_changes_spec_hash(self):
        base = self.make_job(mode=MODE_FAULTS, fault=PowerCutPlan().to_json())
        other = self.make_job(
            mode=MODE_FAULTS, fault=TornPersistPlan().to_json()
        )
        assert base.spec_hash != other.spec_hash

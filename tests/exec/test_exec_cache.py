"""ResultCache: storage layout, atomicity, maintenance, CLI."""

import json

import pytest

from repro.bench.runner import ScenarioResult, scenario_config
from repro.common.config import ModelName, PMPlacement
from repro.exec import ResultCache, ScenarioJob
from repro.exec.cache import main as cache_main


@pytest.fixture
def job() -> ScenarioJob:
    return ScenarioJob(
        app="srad",
        config=scenario_config(ModelName.SBRP, PMPlacement.NEAR),
        app_params={"side": 32},
    )


@pytest.fixture
def result() -> ScenarioResult:
    return ScenarioResult(
        app="srad", label="SBRP-near", cycles=42.0, stats={"persist.lines": 2.0}
    )


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(str(tmp_path / "cache"))


class TestStoreAndLoad:
    def test_miss_on_empty(self, cache, job):
        assert cache.get(job) is None
        assert job not in cache
        assert len(cache) == 0

    def test_round_trip(self, cache, job, result):
        cache.put(job, result)
        assert job in cache
        assert cache.get(job) == result
        assert len(cache) == 1

    def test_sharded_layout(self, cache, job, result):
        path = cache.put(job, result)
        assert path.parent.name == job.key[:2]
        assert path.name == f"{job.key}.json"

    def test_payload_records_job_and_fingerprint(self, cache, job, result):
        path = cache.put(job, result)
        payload = json.loads(path.read_text())
        assert payload["key"] == job.key
        assert payload["spec_hash"] == job.spec_hash
        assert payload["job"]["app"] == "srad"
        assert len(payload["code"]) == 64

    def test_no_temp_file_left_behind(self, cache, job, result):
        cache.put(job, result)
        leftovers = [
            p for p in cache.root.rglob("*") if p.is_file() and
            p.suffix != ".json"
        ]
        assert leftovers == []

    def test_overwrite_is_idempotent(self, cache, job, result):
        cache.put(job, result)
        cache.put(job, result)
        assert len(cache) == 1
        assert cache.get(job) == result


class TestCorruption:
    def test_corrupt_payload_is_a_miss(self, cache, job, result):
        path = cache.put(job, result)
        path.write_text("{not json")
        assert cache.get(job) is None

    def test_wrong_shape_payload_is_a_miss(self, cache, job, result):
        path = cache.put(job, result)
        path.write_text(json.dumps({"something": "else"}))
        assert cache.get(job) is None

    def test_entries_skips_corrupt_files(self, cache, job, result):
        path = cache.put(job, result)
        path.write_text("{not json")
        assert list(cache.entries()) == []


class TestMaintenance:
    def test_clear(self, cache, job, result):
        cache.put(job, result)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_prune_keeps_current_code_entries(self, cache, job, result):
        cache.put(job, result)
        assert cache.prune() == 0
        assert len(cache) == 1

    def test_prune_drops_stale_code_entries(self, cache, job, result):
        path = cache.put(job, result)
        payload = json.loads(path.read_text())
        payload["code"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert cache.prune() == 1
        assert len(cache) == 0

    def test_size_bytes_counts_payloads(self, cache, job, result):
        assert cache.size_bytes() == 0
        cache.put(job, result)
        assert cache.size_bytes() > 0


class TestCLI:
    def _run(self, capsys, *argv) -> str:
        assert cache_main(list(argv)) == 0
        return capsys.readouterr().out

    def test_info_and_ls(self, cache, job, result, capsys):
        cache.put(job, result)
        root = str(cache.root)
        out = self._run(capsys, "--cache-dir", root, "info")
        assert "entries   : 1" in out
        out = self._run(capsys, "--cache-dir", root, "ls")
        assert "srad" in out and "SBRP-near" in out

    def test_prune_and_clear(self, cache, job, result, capsys):
        cache.put(job, result)
        root = str(cache.root)
        out = self._run(capsys, "--cache-dir", root, "prune")
        assert "pruned 0" in out
        out = self._run(capsys, "--cache-dir", root, "clear")
        assert "cleared 1" in out
        assert len(cache) == 0

    def test_env_var_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.root == tmp_path / "envcache"

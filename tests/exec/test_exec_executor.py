"""Executor semantics: dedupe, caching, parallel parity, failures."""

import dataclasses

import pytest

from repro.bench.runner import ScenarioResult
from repro.common.config import ModelName, PMPlacement, small_system
from repro.exec import (
    Executor,
    JobFailedError,
    ResultCache,
    ScenarioJob,
    execute_job_payload,
)
from repro.trace.tracer import TraceConfig, Tracer

#: Tiny configs keep every executor test sub-second per simulation.
_CFG = small_system(ModelName.SBRP, PMPlacement.NEAR)
_CFG_FAR = small_system(ModelName.SBRP, PMPlacement.FAR)


def _job(app="reduction", config=_CFG, **params) -> ScenarioJob:
    params = params or {"blocks": 2, "per_thread": 1}
    return ScenarioJob(app=app, config=config, app_params=params)


class TestDedupe:
    def test_duplicate_jobs_execute_once(self):
        ex = Executor(workers=1)
        job = _job()
        results = ex.submit([job, job, dataclasses.replace(job)])
        assert ex.stats.executed == 1
        assert ex.stats.memo_hits == 2
        assert results[0] == results[1] == results[2]

    def test_memo_spans_submit_calls(self):
        ex = Executor(workers=1)
        job = _job()
        first = ex.submit([job])[0]
        second = ex.submit([job])[0]
        assert ex.stats.executed == 1
        assert first is second

    def test_distinct_jobs_all_execute(self):
        ex = Executor(workers=1)
        results = ex.submit([_job(), _job(config=_CFG_FAR)])
        assert ex.stats.executed == 2
        assert results[0].cycles != results[1].cycles


class TestCacheIntegration:
    def test_second_executor_hits_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = _job()
        first = Executor(workers=1, cache=cache)
        r1 = first.submit([job])[0]
        assert first.stats.executed == 1

        second = Executor(workers=1, cache=cache)
        r2 = second.submit([job])[0]
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 1
        assert second.stats.hit_rate == 1.0
        assert r2 == r1

    def test_cache_accepts_directory_string(self, tmp_path):
        ex = Executor(workers=1, cache=str(tmp_path / "c"))
        ex.submit([_job()])
        assert isinstance(ex.cache, ResultCache)
        assert len(ex.cache) == 1

    def test_traced_jobs_bypass_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        traced = dataclasses.replace(_job(), trace_dir=str(tmp_path / "tr"))
        ex = Executor(workers=1, cache=cache)
        result = ex.submit([traced])[0]
        assert result.profile is not None  # traced run carries a profile
        assert len(cache) == 0  # but is never cached
        ex2 = Executor(workers=1, cache=cache)
        ex2.submit([traced])
        assert ex2.stats.executed == 1  # re-simulated, by design


class TestParallelParity:
    def test_workers_do_not_change_results(self):
        jobs = [
            _job(),
            _job(config=_CFG_FAR),
            _job(app="scan", blocks=2),
        ]
        serial = Executor(workers=1).submit(jobs)
        parallel = Executor(workers=3).submit(jobs)
        assert serial == parallel
        # Byte-identical through serialization as well.
        for a, b in zip(serial, parallel):
            assert a.to_json() == b.to_json()

    def test_parallel_path_feeds_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        jobs = [_job(), _job(config=_CFG_FAR)]
        Executor(workers=2, cache=cache).submit(jobs)
        warm = Executor(workers=1, cache=cache)
        warm.submit(jobs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == 2


class TestFailures:
    def test_unknown_app_raises_with_traceback(self):
        bad = ScenarioJob(app="no-such-app", config=_CFG)
        ex = Executor(workers=1)
        with pytest.raises(JobFailedError) as excinfo:
            ex.submit([bad])
        assert "no-such-app" in str(excinfo.value)
        assert "Traceback" in str(excinfo.value)

    def test_allow_failures_yields_none_slot(self):
        bad = ScenarioJob(app="no-such-app", config=_CFG)
        good = _job()
        ex = Executor(workers=1)
        results = ex.submit([bad, good], allow_failures=True)
        assert results[0] is None
        assert results[1] is not None
        assert ex.stats.failed == 1
        assert len(ex.failures) == 1
        assert "Traceback" in str(ex.failures[0])

    def test_parallel_failure_carries_worker_traceback(self):
        bad = ScenarioJob(app="no-such-app", config=_CFG)
        ex = Executor(workers=2)
        results = ex.submit([bad, _job()], allow_failures=True)
        assert results[0] is None and results[1] is not None
        assert "KeyError" in str(ex.failures[0])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            Executor(workers=0)


class TestProgressAndTracer:
    def test_progress_callback_in_serial_mode(self):
        events = []
        ex = Executor(workers=1, progress=events.append)
        ex.submit([_job()])
        assert [e.kind for e in events] == ["start", "done"]
        assert events[-1].status == "ok"

    def test_tracer_records_executor_counters(self):
        tracer = Tracer(TraceConfig())
        ex = Executor(workers=1, tracer=tracer)
        ex.submit([_job()])
        exec_counters = [c for c in tracer.counters if c[0] == "exec"]
        assert exec_counters, "executor progress not wired to the tracer"
        assert exec_counters[-1][3] == 1  # one job done


class TestWorkerPayload:
    def test_execute_job_payload_round_trip(self):
        job = _job()
        payload = execute_job_payload(job.to_json())
        result = ScenarioResult.from_json(payload)
        assert result == job.execute()

"""WorkerPool failure paths: raises, timeouts, killed workers, retries.

Runner functions live at module level so they stay importable under any
multiprocessing start method.
"""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.exec import WorkerPool
from repro.exec.pool import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    PoolEvent,
)


def _double(payload):
    return {"value": payload["x"] * 2}


def _sleepy(payload):
    time.sleep(payload.get("sleep", 0.0))
    return {"value": payload["x"]}


def _explode(payload):
    if payload.get("boom"):
        raise ValueError("kaboom from worker")
    return {"value": payload["x"]}


def _hang(payload):
    time.sleep(60.0)
    return {"value": "never"}


def _die(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _die_once(payload):
    # Crashes on the first attempt only: the sentinel file survives the
    # worker's death, so the retry succeeds.
    sentinel = Path(payload["sentinel"])
    if not sentinel.exists():
        sentinel.write_text("attempted")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": "recovered"}


class TestHappyPath:
    def test_results_align_with_submission_order(self):
        pool = WorkerPool(workers=3)
        outcomes = pool.run([{"x": i} for i in range(6)], _double)
        assert [o.index for o in outcomes] == list(range(6))
        assert [o.value["value"] for o in outcomes] == [0, 2, 4, 6, 8, 10]
        assert all(o.ok and o.status == STATUS_OK for o in outcomes)

    def test_order_deterministic_despite_completion_order(self):
        # Job 0 sleeps longest, so it finishes last but still comes
        # back first.
        payloads = [
            {"x": 0, "sleep": 0.4},
            {"x": 1, "sleep": 0.0},
            {"x": 2, "sleep": 0.1},
        ]
        outcomes = WorkerPool(workers=3).run(payloads, _sleepy)
        assert [o.value["value"] for o in outcomes] == [0, 1, 2]

    def test_more_jobs_than_workers(self):
        outcomes = WorkerPool(workers=2).run(
            [{"x": i} for i in range(7)], _double
        )
        assert len(outcomes) == 7
        assert all(o.ok for o in outcomes)


class TestFailurePaths:
    def test_raising_job_reports_original_traceback(self):
        payloads = [{"x": 1}, {"x": 2, "boom": True}, {"x": 3}]
        outcomes = WorkerPool(workers=2).run(payloads, _explode)
        # The sweep completed: healthy jobs unaffected.
        assert outcomes[0].ok and outcomes[2].ok
        failed = outcomes[1]
        assert failed.status == STATUS_ERROR
        assert "ValueError" in failed.error
        assert "kaboom from worker" in failed.error
        assert "Traceback" in failed.error

    def test_errors_not_retried_by_default(self):
        outcomes = WorkerPool(workers=1, retries=3).run(
            [{"x": 1, "boom": True}], _explode
        )
        assert outcomes[0].attempts == 1

    def test_timeout_kills_hung_job(self):
        pool = WorkerPool(workers=2, timeout=0.5, retries=0)
        payloads = [{"x": 1}, {"hang": True}]
        outcomes = pool.run(payloads, _mixed_hang)
        assert outcomes[0].ok
        assert outcomes[1].status == STATUS_TIMEOUT
        assert "timeout" in outcomes[1].error

    def test_killed_worker_marks_job_crashed_without_killing_sweep(self):
        payloads = [{"x": 1}, {"die": True}, {"x": 3}]
        outcomes = WorkerPool(workers=2, retries=0).run(payloads, _mixed_die)
        assert outcomes[0].ok and outcomes[2].ok
        assert outcomes[1].status == STATUS_CRASHED
        assert "worker" in outcomes[1].error

    def test_crash_is_retried_with_backoff(self, tmp_path):
        sentinel = tmp_path / "sentinel"
        pool = WorkerPool(workers=1, retries=2, backoff=0.05)
        outcomes = pool.run([{"sentinel": str(sentinel)}], _die_once)
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert outcomes[0].value == {"value": "recovered"}

    def test_retry_budget_exhausts(self):
        pool = WorkerPool(workers=1, retries=1, backoff=0.01)
        outcomes = pool.run([{"die": True}], _mixed_die)
        assert outcomes[0].status == STATUS_CRASHED
        assert outcomes[0].attempts == 2  # initial + one retry


def _mixed_hang(payload):
    if payload.get("hang"):
        time.sleep(60.0)
    return {"value": payload.get("x")}


def _mixed_die(payload):
    if payload.get("die"):
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": payload.get("x")}


class TestProgress:
    def test_progress_events_cover_lifecycle(self):
        events = []
        pool = WorkerPool(workers=2, progress=events.append)
        pool.run([{"x": i} for i in range(3)], _double, labels=["a", "b", "c"])
        kinds = [e.kind for e in events]
        assert kinds.count("start") == 3
        assert kinds.count("done") == 3
        done = [e for e in events if e.kind == "done"]
        assert {e.label for e in done} == {"a", "b", "c"}
        assert all(isinstance(e, PoolEvent) for e in events)
        assert max(e.done for e in done) == 3

    def test_retry_emits_event(self, tmp_path):
        events = []
        sentinel = tmp_path / "sentinel"
        pool = WorkerPool(
            workers=1, retries=2, backoff=0.05, progress=events.append
        )
        pool.run([{"sentinel": str(sentinel)}], _die_once)
        assert any(e.kind == "retry" for e in events)


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_empty_payload_list(self):
        assert WorkerPool(workers=2).run([], _double) == []

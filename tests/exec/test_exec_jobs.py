"""ScenarioJob identity: hashing, serialization, code fingerprint."""

import dataclasses
import enum

import pytest

from repro.bench.runner import ScenarioResult, scenario_config
from repro.common.config import (
    GPUConfig,
    MemoryConfig,
    ModelName,
    PMPlacement,
    SBRPConfig,
    SystemConfig,
    stable_hash,
)
from repro.common.errors import ConfigError
from repro.exec import MODE_RECOVERY, ScenarioJob, code_fingerprint


@pytest.fixture
def config() -> SystemConfig:
    return scenario_config(ModelName.SBRP, PMPlacement.NEAR)


@pytest.fixture
def job(config) -> ScenarioJob:
    return ScenarioJob(app="srad", config=config, app_params={"side": 32})


class TestStableHash:
    def test_deterministic_and_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_enums_hash_as_values(self):
        assert stable_hash(ModelName.SBRP) == stable_hash("sbrp")
        assert stable_hash([PMPlacement.NEAR]) == stable_hash(["near"])

    def test_distinct_objects_distinct_hashes(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})


class TestConfigSerialization:
    def test_round_trip(self, config):
        rebuilt = SystemConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.cache_key() == config.cache_key()

    def test_round_trip_survives_json(self, config):
        import json

        rebuilt = SystemConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config


def _altered(value):
    """A different value of the same general shape as *value*."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, enum.Enum):
        members = list(type(value))
        return members[(members.index(value) + 1) % len(members)]
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value * 2 + 1.0
    raise AssertionError(f"no alteration rule for {value!r}")


class TestCacheKeyProperty:
    """replace()-ing ANY field of any sub-config must change the key."""

    def _assert_all_fields_matter(self, base_system, attr, sub_config):
        for field in dataclasses.fields(sub_config):
            old = getattr(sub_config, field.name)
            changed = dataclasses.replace(
                sub_config, **{field.name: _altered(old)}
            )
            system = dataclasses.replace(base_system, **{attr: changed})
            assert system.cache_key() != base_system.cache_key(), (
                f"cache_key ignored {attr}.{field.name}"
            )

    def test_gpu_fields(self, config):
        self._assert_all_fields_matter(config, "gpu", config.gpu)

    def test_memory_fields(self, config):
        self._assert_all_fields_matter(config, "memory", config.memory)

    def test_sbrp_fields(self, config):
        self._assert_all_fields_matter(config, "sbrp", config.sbrp)

    def test_top_level_fields(self, config):
        assert (
            dataclasses.replace(config, model=ModelName.EPOCH).cache_key()
            != config.cache_key()
        )
        assert (
            dataclasses.replace(config, seed=config.seed + 1).cache_key()
            != config.cache_key()
        )

    def test_equal_configs_share_key(self, config):
        twin = scenario_config(ModelName.SBRP, PMPlacement.NEAR)
        assert twin.cache_key() == config.cache_key()


class TestScenarioJob:
    def test_json_round_trip(self, job):
        rebuilt = ScenarioJob.from_json(job.to_json())
        assert rebuilt == job
        assert rebuilt.key == job.key
        assert rebuilt.spec_hash == job.spec_hash

    def test_key_changes_with_app_params(self, job):
        other = dataclasses.replace(job, app_params={"side": 48})
        assert other.key != job.key
        assert other.spec_hash != job.spec_hash

    def test_key_changes_with_app_and_config(self, job, config):
        assert dataclasses.replace(job, app="scan").key != job.key
        far = scenario_config(ModelName.SBRP, PMPlacement.FAR)
        assert dataclasses.replace(job, config=far).key != job.key

    def test_key_changes_with_mode_and_verify(self, job):
        recovery = dataclasses.replace(job, mode=MODE_RECOVERY)
        assert recovery.key != job.key
        unverified = dataclasses.replace(job, verify=False)
        assert unverified.key != job.key

    def test_trace_options_do_not_change_identity(self, job):
        traced = dataclasses.replace(job, trace_dir="/tmp/x", trace_tag="t")
        assert traced.spec_hash == job.spec_hash
        assert traced.key == job.key
        assert not traced.cacheable
        assert job.cacheable

    def test_key_includes_code_fingerprint(self, job):
        assert job.key == stable_hash(
            {"spec": job.spec, "code": code_fingerprint()}
        )
        assert job.key != job.spec_hash

    def test_unknown_mode_rejected(self, config):
        with pytest.raises(ConfigError):
            ScenarioJob(app="srad", config=config, mode="bogus")

    def test_label(self, job):
        assert job.label == "srad@SBRP-near"
        recovery = dataclasses.replace(job, mode=MODE_RECOVERY)
        assert "recovery" in recovery.label


class TestScenarioResultSerialization:
    def test_round_trip_with_profile(self):
        result = ScenarioResult(
            app="srad",
            label="SBRP-near",
            cycles=123.5,
            stats={"l1.read_miss_pm": 7.0, "persist.lines": 3.0},
            profile="ascii profile",
        )
        rebuilt = ScenarioResult.from_json(result.to_json())
        assert rebuilt == result
        assert rebuilt.profile == "ascii profile"
        assert rebuilt.stat("persist.lines") == 3.0

    def test_round_trip_without_profile_survives_json(self):
        import json

        result = ScenarioResult(
            app="scan", label="GPM", cycles=9.0, stats={"a.b": 1.5}
        )
        rebuilt = ScenarioResult.from_json(
            json.loads(json.dumps(result.to_json()))
        )
        assert rebuilt == result
        assert rebuilt.profile is None


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_hex_digest_shape(self):
        fp = code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex


class TestJobExecute:
    def test_execute_runs_scenario(self, job):
        result = job.execute()
        assert result.app == "srad"
        assert result.label == "SBRP-near"
        assert result.cycles > 0
        assert result.stat("persist.lines") > 0

    def test_execute_recovery_mode(self, config):
        job = ScenarioJob(
            app="reduction",
            config=config,
            app_params={"blocks": 2, "per_thread": 1},
            mode=MODE_RECOVERY,
        )
        result = job.execute()
        assert result.cycles > 0
        assert result.stat("recovery.cycles") == result.cycles

"""Shared fixtures: small systems per persistency model."""

import pytest

from repro import GPUSystem, ModelName, PMPlacement, small_system

ALL_MODELS = [ModelName.GPM, ModelName.EPOCH, ModelName.SBRP]


@pytest.fixture(params=ALL_MODELS, ids=lambda m: m.value)
def model(request) -> ModelName:
    return request.param


@pytest.fixture
def system(model) -> GPUSystem:
    """A small PM-far system under each persistency model."""
    return GPUSystem(small_system(model))


@pytest.fixture
def sbrp_system() -> GPUSystem:
    return GPUSystem(small_system(ModelName.SBRP))


@pytest.fixture
def near_system(model) -> GPUSystem:
    return GPUSystem(small_system(model, PMPlacement.NEAR))


def run_to_end(system: GPUSystem, kernel, blocks=1, args=(), kwargs=None):
    """Launch, drain, and return the kernel result."""
    result = system.launch(kernel, blocks, args=args, kwargs=kwargs)
    system.sync()
    return result

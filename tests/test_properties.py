"""Property-based tests (hypothesis) on core structures and invariants."""

import networkx as nx
import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import GPUSystem, ModelName, Scope, small_system
from repro.common.bitmask import WarpMask
from repro.formal import (
    ExecutionWitness,
    LitmusProgram,
    allowed_crash_images,
    build_pmo,
)
from repro.formal.crash_states import downward_closed_subsets
from repro.formal.events import all_reads_from
from repro.memory.devices import BandwidthChannel, NVMController
from repro.persistency.sbrp.pbuffer import EntryKind, PersistBuffer

# ----------------------------------------------------------------------
# WarpMask
# ----------------------------------------------------------------------
warp_sets = st.sets(st.integers(0, 31), max_size=8)


@given(warp_sets, warp_sets)
def test_warpmask_or_is_union(a, b):
    ma, mb = WarpMask.from_warps(a), WarpMask.from_warps(b)
    ma.or_with(mb)
    assert set(ma.warps()) == a | b


@given(warp_sets, warp_sets)
def test_warpmask_and_nonzero_iff_intersection(a, b):
    assert WarpMask.from_warps(a).and_nonzero(WarpMask.from_warps(b)) == bool(a & b)


@given(warp_sets, warp_sets)
def test_warpmask_clear_mask_is_difference(a, b):
    ma = WarpMask.from_warps(a)
    ma.clear_mask(WarpMask.from_warps(b))
    assert set(ma.warps()) == a - b


# ----------------------------------------------------------------------
# Bandwidth channel / WPQ
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.floats(0, 1e5), st.integers(1, 4096)), min_size=1, max_size=30
    )
)
def test_channel_completions_after_arrival(reqs):
    chan = BandwidthChannel("c", latency=17, bytes_per_cycle=3.5)
    now = 0.0
    for arrival, nbytes in reqs:
        now = max(now, arrival)
        done = chan.transfer(now, nbytes)
        assert done >= now + nbytes / 3.5


@given(st.lists(st.integers(64, 1024), min_size=1, max_size=40))
def test_wpq_accepts_monotonically(sizes):
    nvm = NVMController("n", 10, 5, latency=20, wpq_entries=4)
    accepts = [nvm.write(0, size) for size in sizes]
    assert accepts == sorted(accepts)
    # Acceptance is never earlier than arrival.
    assert all(a >= 0 for a in accepts)


# ----------------------------------------------------------------------
# Persist buffer
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.sampled_from(list(EntryKind)), st.integers(1, 0xFF)),
        max_size=30,
    )
)
def test_pbuffer_live_count_matches_entries(ops):
    pb = PersistBuffer(capacity=64)
    for kind, mask in ops:
        pb.append(kind, mask)
    assert pb.live_count() == len(pb.entries())
    # Removing everything empties the buffer.
    for entry in pb.entries():
        pb.remove(entry)
    assert pb.live_count() == 0
    assert pb.head() is None


@given(st.data())
def test_pbuffer_entries_keep_fifo_order(data):
    pb = PersistBuffer(capacity=64)
    n = data.draw(st.integers(1, 20))
    for _ in range(n):
        pb.append(EntryKind.PERSIST, 1)
    removed = data.draw(
        st.sets(st.integers(0, n - 1), max_size=n)
    )
    entries = pb.entries()
    for index in removed:
        pb.remove(entries[index])
    seqs = [e.seq for e in pb.entries()]
    assert seqs == sorted(seqs)


# ----------------------------------------------------------------------
# Formal model
# ----------------------------------------------------------------------
@st.composite
def small_dags(draw):
    n = draw(st.integers(1, 6))
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                g.add_edge(i, j)
    return g


@given(small_dags())
def test_downward_closed_subsets_are_closed(dag):
    for subset in downward_closed_subsets(dag):
        for node in subset:
            assert nx.ancestors(dag, node) <= subset


@given(small_dags())
def test_downward_closed_contains_empty_and_full(dag):
    subsets = downward_closed_subsets(dag)
    assert frozenset() in subsets
    assert frozenset(dag.nodes) in subsets


@st.composite
def random_litmus(draw):
    """Small random programs: 2 threads, writes/fences/release-acquire."""
    prog = LitmusProgram("random")
    locs = ["pA", "pB", "pC"]
    for tid in range(2):
        thread = prog.thread(block=draw(st.integers(0, 1)))
        for _ in range(draw(st.integers(1, 4))):
            choice = draw(st.integers(0, 3))
            if choice == 0:
                thread.w(draw(st.sampled_from(locs)), draw(st.integers(1, 3)))
            elif choice == 1:
                thread.ofence()
            elif choice == 2:
                thread.prel(
                    "f", 1, draw(st.sampled_from([Scope.BLOCK, Scope.DEVICE]))
                )
            else:
                thread.pacq(
                    "f", draw(st.sampled_from([Scope.BLOCK, Scope.DEVICE]))
                )
    return prog


@given(random_litmus())
@settings(max_examples=30, deadline=None)
def test_crash_images_are_pmo_consistent(program):
    """Every allowed image respects pmo: a durable write's pmo
    predecessors appear durable too (checked per location presence)."""
    from collections import Counter

    from repro.common.errors import LitmusError

    for reads_from in all_reads_from(program):
        witness = ExecutionWitness(program, reads_from)
        try:
            pmo = build_pmo(witness)
        except LitmusError:
            continue  # infeasible witness
        events = pmo.graph["events"]
        writers = Counter(
            (events[eid].loc, events[eid].value) for eid in pmo.nodes
        )
        for image in allowed_crash_images(witness):
            for eid in pmo.nodes:
                event = events[eid]
                if image.get(event.loc, 0) != event.value:
                    continue
                if writers[(event.loc, event.value)] > 1:
                    # Value aliasing: another event wrote the same
                    # value to this location, so the image does not
                    # identify which of them persisted — the
                    # ancestor obligation cannot be pinned on this
                    # event.
                    continue
                for pred in nx.ancestors(pmo, eid):
                    ploc = events[pred].loc
                    # The predecessor's location must hold *some*
                    # durable (non-initial) value.
                    assert image.get(ploc, 0) != 0


# ----------------------------------------------------------------------
# End-to-end: random fenced programs produce pmo-consistent logs
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(1, 100), min_size=2, max_size=6),
    st.sampled_from([ModelName.SBRP, ModelName.EPOCH]),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fenced_chain_prefix_property(values, model):
    """A fully fenced write chain may crash only to a prefix."""
    system = GPUSystem(small_system(model, num_sms=1, threads_per_block=32))
    pm = system.pm_create("chain", 128 * len(values))
    addrs = [pm.base + 128 * i for i in range(len(values))]

    def kernel(w, addrs, values):
        for addr, value in zip(addrs, values):
            yield w.st(addr, value, mask=w.lane == 0)
            yield w.ofence()

    system.launch(kernel, 1, args=(addrs, values))
    system.sync()
    log = system.gpu.subsystem.persist_log
    times = sorted({r.accept_time for r in log.records()}) + [system.now]
    for t in times:
        image = system.gpu.subsystem.crash_image(t)
        present = [image.get(a, 0) == v for a, v in zip(addrs, values)]
        # Durable set must be a prefix of the chain.
        if False in present:
            first_missing = present.index(False)
            assert not any(present[first_missing:]), present

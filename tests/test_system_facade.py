"""GPUSystem facade: allocation, host IO, crash/reboot lifecycle."""

import numpy as np
import pytest

from repro import CrashImage, GPUSystem, ModelName, small_system
from repro.common.errors import SimulationError


@pytest.fixture
def system():
    return GPUSystem(small_system(ModelName.SBRP))


class TestAllocation:
    def test_pm_create_and_open(self, system):
        region = system.pm_create("r", 1024)
        assert system.pm_exists("r")
        assert system.pm_open("r").base == region.base

    def test_malloc_is_volatile(self, system):
        from repro.memory.address_space import is_pm_addr

        region = system.malloc(1024)
        assert not is_pm_addr(region.base)


class TestHostIO:
    def test_host_write_words_roundtrip(self, system):
        region = system.pm_create("r", 1024)
        values = np.arange(10) * 7
        system.host_write_words(region, values)
        assert (system.read_words(region, 10) == values).all()

    def test_host_pm_writes_are_durable(self, system):
        region = system.pm_create("r", 1024)
        system.host_write_words(region, [42])
        assert system.durable_words(region, 1)[0] == 42

    def test_host_fill(self, system):
        region = system.pm_create("r", 256)
        system.host_fill(region, 9)
        assert (system.read_words(region) == 9).all()


class TestCrashReboot:
    def run_writer(self, system):
        region = system.pm_create("data", 4096)

        def kernel(w, region):
            yield w.st(region.base + 4 * w.tid, w.tid + 1)

        system.launch(kernel, 1, args=(region,))
        system.sync()
        return region

    def test_crash_now_and_reboot(self, system):
        region = self.run_writer(system)
        image = system.crash()
        assert isinstance(image, CrashImage)
        rebooted = GPUSystem.reboot(system, image)
        reopened = rebooted.pm_open("data")
        assert (rebooted.read_words(reopened, 32) == np.arange(32) + 1).all()

    def test_crash_in_the_future_rejected(self, system):
        self.run_writer(system)
        with pytest.raises(SimulationError):
            system.crash(at=system.now + 1)

    def test_crash_at_time_zero_only_has_host_data(self, system):
        region = system.pm_create("init", 256)
        system.host_write_words(region, [5])
        self.run_writer(system)
        image = system.crash(at=0.0)
        assert image.pm.get(region.base) == 5
        data = system.pm_open("data")
        assert data.base not in image.pm

    def test_rebooted_system_can_run_kernels(self, system):
        self.run_writer(system)
        rebooted = GPUSystem.reboot(system, system.crash())
        region = rebooted.pm_open("data")

        def doubler(w, region):
            vals = yield w.ld(region.base + 4 * w.tid)
            yield w.st(region.base + 4 * w.tid, vals * 2)

        rebooted.launch(doubler, 1, args=(region,))
        rebooted.sync()
        assert (rebooted.read_words(region, 32) == (np.arange(32) + 1) * 2).all()

    def test_volatile_data_does_not_survive(self, system):
        vol = system.malloc(256)
        system.host_write_words(vol, [123])
        rebooted = GPUSystem.reboot(system, system.crash())
        assert rebooted.read_word(vol.base) == 0


class TestBookkeeping:
    def test_kernel_results_accumulate(self, system):
        def kernel(w):
            yield w.compute(10)

        system.launch(kernel, 1)
        system.launch(kernel, 2)
        assert len(system.kernel_results) == 2
        assert system.total_cycles() > 0

    def test_stat_accessor(self, system):
        def kernel(w):
            yield w.compute(1)

        system.launch(kernel, 1)
        assert system.stat("kernel.launches") == 1
        assert system.stat("missing", -1) == -1

    def test_repr_mentions_label(self, system):
        assert "SBRP-far" in repr(system)

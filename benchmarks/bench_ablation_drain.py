"""Ablation: eager vs lazy vs window drain policies (Section 6.2).

Beyond the paper's figures: quantifies the drain-policy tradeoff the
window design resolves, plus the PB's write-coalescing factor.
"""

from repro.bench.ablations import ablation_coalescing, ablation_drain_policy

from conftest import emit


def test_ablation_drain_policy(benchmark, preset, executor):
    table = benchmark.pedantic(
        ablation_drain_policy,
        args=(preset,),
        kwargs={"executor": executor},
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert table.rows


def test_ablation_coalescing(benchmark, preset, executor):
    table = benchmark.pedantic(
        ablation_coalescing,
        args=(preset,),
        kwargs={"apps": ["gpkvs", "scan"], "executor": executor},
        rounds=1,
        iterations=1,
    )
    emit(table)
    for row in table.rows:
        assert row["coalescing"] >= 1.0

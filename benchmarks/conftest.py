"""Shared fixtures for the figure benchmarks.

Every benchmark regenerates one figure of the paper on the ``quick``
workload preset (full Table 1 machine, scaled-down inputs), prints the
resulting table (visible with ``pytest -s``), and appends it to
``figures_output.txt`` next to this file so the tables survive pytest's
output capture.
"""

import pathlib

import pytest

FIGURES_FILE = pathlib.Path(__file__).parent / "figures_output.txt"


def pytest_addoption(parser):
    parser.addoption(
        "--trace-dir",
        action="store",
        default=None,
        help=(
            "directory for per-scenario Chrome/Perfetto traces and "
            "counter CSVs (tracing is off without it)"
        ),
    )


@pytest.fixture(scope="session", autouse=True)
def _fresh_figures_file():
    FIGURES_FILE.write_text("")
    yield


@pytest.fixture(scope="session")
def preset() -> str:
    return "quick"


@pytest.fixture(scope="session")
def trace_dir(request):
    return request.config.getoption("--trace-dir")


def emit(table) -> None:
    text = table.to_ascii()
    print()
    print(text)
    with FIGURES_FILE.open("a") as fh:
        fh.write(text + "\n\n")

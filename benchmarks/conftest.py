"""Shared fixtures for the figure benchmarks.

Every benchmark regenerates one figure of the paper on the ``quick``
workload preset (full Table 1 machine, scaled-down inputs), prints the
resulting table (visible with ``pytest -s``), and appends it to
``figures_output.txt`` next to this file so the tables survive pytest's
output capture.

All benchmarks share one :class:`repro.exec.Executor`, so baselines that
recur across figures simulate once per session and — with the default
result cache — once per code version ever.  Control it with::

    pytest benchmarks/ --workers 4            # parallel fan-out
    pytest benchmarks/ --cache-dir /tmp/c     # explicit cache root
    pytest benchmarks/ --no-cache             # always re-simulate
"""

import pathlib

import pytest

from repro.exec import Executor, ResultCache, default_cache_dir

FIGURES_FILE = pathlib.Path(__file__).parent / "figures_output.txt"


def pytest_addoption(parser):
    parser.addoption(
        "--trace-dir",
        action="store",
        default=None,
        help=(
            "directory for per-scenario Chrome/Perfetto traces and "
            "counter CSVs (tracing is off without it)"
        ),
    )
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=1,
        help="worker processes for scenario execution (1 = serial)",
    )
    parser.addoption(
        "--cache-dir",
        action="store",
        default=None,
        help=(
            "scenario-result cache root "
            "(default: $REPRO_CACHE_DIR or ~/.cache/repro-sbrp)"
        ),
    )
    parser.addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="disable the scenario-result cache",
    )


@pytest.fixture(scope="session", autouse=True)
def _fresh_figures_file():
    FIGURES_FILE.write_text("")
    yield


@pytest.fixture(scope="session")
def preset() -> str:
    return "quick"


@pytest.fixture(scope="session")
def trace_dir(request):
    return request.config.getoption("--trace-dir")


@pytest.fixture(scope="session")
def executor(request) -> Executor:
    """One executor per benchmark session: dedupe + cache + workers."""
    cache = None
    if not request.config.getoption("--no-cache"):
        root = request.config.getoption("--cache-dir")
        cache = ResultCache(root if root is not None else default_cache_dir())
    return Executor(
        workers=request.config.getoption("--workers"),
        cache=cache,
    )


def emit(table) -> None:
    text = table.to_ascii()
    print()
    print(text)
    with FIGURES_FILE.open("a") as fh:
        fh.write(text + "\n\n")

"""Speedup of each persistency model over epoch-far (Figure 6).

Regenerates the figure's data on the quick preset and prints it as an
ASCII table; the benchmark time is the full figure-generation time.
"""

from repro.bench import figure6

from conftest import emit


def test_figure6(benchmark, preset, trace_dir, executor):
    table = benchmark.pedantic(
        figure6,
        args=(preset,),
        kwargs={"trace_dir": trace_dir, "executor": executor},
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert table.rows, "figure produced no data"

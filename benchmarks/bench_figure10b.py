"""NVM bandwidth sensitivity (Figure 10b).

Regenerates the figure's data on the quick preset and prints it as an
ASCII table; the benchmark time is the full figure-generation time.
"""

from repro.bench import figure10b

from conftest import emit


def test_figure10b(benchmark, preset, trace_dir, executor):
    table = benchmark.pedantic(
        figure10b,
        args=(preset,),
        kwargs={"trace_dir": trace_dir, "executor": executor},
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert table.rows, "figure produced no data"

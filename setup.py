"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; this file lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Scoped Buffered Persistency Model for GPUs' "
        "(ASPLOS 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
